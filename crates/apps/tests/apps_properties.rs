//! Randomized tests for the prototype applications' invariants, driven by
//! the deterministic [`SimRng`] so failures are reproducible from the seed.

use alfredo_apps::shop::{ComparisonLogic, Product, ProductCatalog};
use alfredo_apps::{sample_catalog, MouseControllerService};
use alfredo_osgi::{EventAdmin, Service, Value};
use alfredo_sim::SimRng;

const SEED: u64 = 0xa995_0000;
const CASES: usize = 120;

fn rand_string(rng: &mut SimRng, charset: &[u8], min: usize, max: usize) -> String {
    let len = min + rng.next_below((max - min + 1) as u64) as usize;
    (0..len)
        .map(|_| charset[rng.next_below(charset.len() as u64) as usize] as char)
        .collect()
}

fn product(rng: &mut SimRng) -> Product {
    const NAME: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz '-";
    const ALPHA: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz";
    let printable: Vec<u8> = (0x20..0x7f).collect();
    Product {
        name: rand_string(rng, NAME, 1, 24),
        category: rand_string(rng, ALPHA, 1, 10),
        price_cents: rng.next_below(10_000_000) as i64,
        description: rand_string(rng, &printable, 0, 40),
        dimensions_cm: (
            1 + rng.next_below(499) as i64,
            1 + rng.next_below(499) as i64,
            1 + rng.next_below(499) as i64,
        ),
        stock: rng.next_below(1000) as i64,
    }
}

/// Search results always match the query (case-insensitively) in the
/// name or description, and every matching product is found.
#[test]
fn search_is_sound_and_complete() {
    let mut rng = SimRng::seed_from(SEED);
    for case in 0..CASES {
        let catalog = ProductCatalog::new();
        for _ in 0..rng.next_below(20) {
            catalog.insert(product(&mut rng));
        }
        let query = rand_string(
            &mut rng,
            b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz",
            1,
            6,
        );
        let hits = catalog.search(&query);
        let q = query.to_lowercase();
        // Soundness: each hit names a product matching the query.
        for hit in &hits {
            let p = catalog.get(hit).expect("hit exists");
            assert!(
                p.name.to_lowercase().contains(&q) || p.description.to_lowercase().contains(&q),
                "case {case}"
            );
        }
        // Completeness over the *deduplicated* name space (the catalog is
        // keyed by name; later inserts replace earlier ones).
        let matching = catalog
            .categories()
            .iter()
            .flat_map(|c| catalog.products_in(c))
            .filter(|name| {
                let p = catalog.get(name).unwrap();
                p.name.to_lowercase().contains(&q) || p.description.to_lowercase().contains(&q)
            })
            .count();
        assert_eq!(hits.len(), matching, "case {case}");
    }
}

/// Comparison is symmetric in its verdict about which is cheaper and
/// never panics on conforming products.
#[test]
fn comparison_is_consistent() {
    let mut rng = SimRng::seed_from(SEED ^ 1);
    for case in 0..CASES {
        let a = product(&mut rng);
        let b = product(&mut rng);
        if a.name == b.name {
            continue;
        }
        let ab = ComparisonLogic::compare(&a.to_value(), &b.to_value()).unwrap();
        let ba = ComparisonLogic::compare(&b.to_value(), &a.to_value()).unwrap();
        let cheaper = if a.price_cents <= b.price_cents {
            &a.name
        } else {
            &b.name
        };
        // Ties break toward the first argument; when prices differ the
        // verdict must name the cheaper product in both orders.
        if a.price_cents != b.price_cents {
            assert!(
                ab.as_str().unwrap().starts_with(cheaper.as_str()),
                "case {case}: {ab}"
            );
            assert!(
                ba.as_str().unwrap().starts_with(cheaper.as_str()),
                "case {case}: {ba}"
            );
        }
    }
}

/// Products round-trip through the wire value and validate against the
/// injected type descriptor.
#[test]
fn product_values_conform_to_injected_type() {
    let mut rng = SimRng::seed_from(SEED ^ 2);
    for case in 0..CASES {
        let p = product(&mut rng);
        let v = p.to_value();
        let mut types = alfredo_rosgi::TypeRegistry::new();
        types.inject(Product::type_descriptor());
        types.validate_deep(&v).unwrap();
        assert_eq!(
            v.field("name").and_then(Value::as_str),
            Some(p.name.as_str()),
            "case {case}"
        );
        assert_eq!(
            v.field("price_cents").and_then(Value::as_i64),
            Some(p.price_cents)
        );
    }
}

/// The mouse pointer is always clamped inside the screen, whatever the
/// move sequence.
#[test]
fn pointer_never_leaves_the_screen() {
    let mut rng = SimRng::seed_from(SEED ^ 3);
    for _ in 0..CASES {
        let svc = MouseControllerService::new(800, 600, EventAdmin::new());
        for _ in 0..rng.next_below(50) {
            let dx = rng.next_below(10_000) as i64 - 5_000;
            let dy = rng.next_below(10_000) as i64 - 5_000;
            svc.invoke("move", &[Value::I64(dx), Value::I64(dy)])
                .unwrap();
            let (x, y) = svc.position();
            assert!((0..800).contains(&x), "x={x}");
            assert!((0..600).contains(&y), "y={y}");
        }
    }
}

#[test]
fn sample_catalog_is_stable() {
    // The experiments depend on the sample data staying deterministic.
    let a = sample_catalog();
    let b = sample_catalog();
    assert_eq!(a.len(), b.len());
    assert_eq!(a.categories(), b.categories());
    for cat in a.categories() {
        assert_eq!(a.products_in(&cat), b.products_in(&cat));
    }
}
